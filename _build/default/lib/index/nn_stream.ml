(* Two regimes. Shallow ranks are pulled one at a time from the kd-tree
   cursor. Once a stream is drained past [switch_threshold] ranks — where
   high-dimensional best-first search stops pruning anything — the stream
   computes every in-range distance once and then serves ranks from a
   progressively sorted prefix: each extension quickselects the next chunk
   (geometrically doubling) and sorts only that chunk, so a stream drained
   to depth m costs O(n + m log m) rather than O(n log n) up front or
   O(n) heap work per rank. Both regimes produce the identical
   (distance, index) order, so switching is invisible to callers. *)

type t = {
  tree : Kd_tree.t;
  query : Point.t;
  max_dist : float;
  switch_threshold : int;
  mutable cursor : Kd_tree.cursor option;  (* None once bulk-loaded *)
  mutable idxs : int array;    (* parallel arrays *)
  mutable dists : float array;
  mutable len : int;           (* cursor mode: items pulled; bulk mode:
                                  total in-range items *)
  mutable sorted_upto : int;   (* bulk mode: prefix in final order *)
  mutable bulk : bool;
  mutable exhausted : bool;    (* cursor mode: cursor ran dry *)
}

(* Best-first search pays off only while bounding boxes prune; with
   dimension this high the first pop already visits most of the tree, so
   the stream starts directly in bulk mode (cf. the VA-File argument that
   linear scans dominate tree indexes in high dimension). *)
let hopeless_dimension tree =
  Kd_tree.size tree > 0 && Point.dim (Kd_tree.point tree 0) >= 10

let create tree query ?(max_dist = infinity) ?(switch_threshold = 64) () =
  let t =
    {
      tree;
      query;
      max_dist;
      switch_threshold;
      cursor = Some (Kd_tree.cursor tree query ~max_dist ());
      idxs = [||];
      dists = [||];
      len = 0;
      sorted_upto = 0;
      bulk = false;
      exhausted = false;
    }
  in
  if hopeless_dimension tree then begin
    t.cursor <- None;
    t.bulk <- true;
    t.len <- -1 (* filled by the first access *)
  end;
  t

let append t idx dist =
  if t.len = Array.length t.idxs then begin
    let capacity = Stdlib.max 8 (2 * t.len) in
    let idxs = Array.make capacity 0 and dists = Array.make capacity 0. in
    Array.blit t.idxs 0 idxs 0 t.len;
    Array.blit t.dists 0 dists 0 t.len;
    t.idxs <- idxs;
    t.dists <- dists
  end;
  t.idxs.(t.len) <- idx;
  t.dists.(t.len) <- dist;
  t.len <- t.len + 1

(* (dist, idx) strict order on positions of the parallel arrays. *)
let pos_less t i j =
  t.dists.(i) < t.dists.(j)
  || (t.dists.(i) = t.dists.(j) && t.idxs.(i) < t.idxs.(j))

let swap t i j =
  let d = t.dists.(i) in
  t.dists.(i) <- t.dists.(j);
  t.dists.(j) <- d;
  let x = t.idxs.(i) in
  t.idxs.(i) <- t.idxs.(j);
  t.idxs.(j) <- x

(* Lomuto partition of [lo, hi) with a median-of-three pivot; returns the
   pivot's final position. The (dist, idx) keys are pairwise distinct (idx
   is unique), so the order is strict and total. *)
let partition t lo hi =
  let mid = lo + ((hi - lo) / 2) and last = hi - 1 in
  (* Median of first/middle/last moved to [last]: force the minimum of the
     three into [lo]; the median of the remaining two is their minimum. *)
  if pos_less t mid lo then swap t mid lo;
  if pos_less t last lo then swap t last lo;
  if pos_less t mid last then swap t mid last;
  let store = ref lo in
  for i = lo to hi - 2 do
    if pos_less t i last then begin
      swap t i !store;
      incr store
    end
  done;
  swap t !store last;
  !store

(* Quickselect: rearrange [lo, hi) so that positions [lo, k) hold the
   k-lo smallest elements (in arbitrary order). *)
let rec select_prefix t lo hi k =
  if k > lo && k < hi && hi - lo > 1 then begin
    let p = partition t lo hi in
    if k <= p then select_prefix t lo p k
    else select_prefix t (p + 1) hi k
  end

let sort_range t lo hi =
  (* Sort positions [lo, hi) by (dist, idx) via a permutation sort on a
     scratch index array. *)
  let m = hi - lo in
  if m > 1 then begin
    let order = Array.init m (fun k -> lo + k) in
    Array.sort
      (fun a b ->
        let c = Float.compare t.dists.(a) t.dists.(b) in
        if c <> 0 then c else Int.compare t.idxs.(a) t.idxs.(b))
      order;
    let d = Array.map (fun p -> t.dists.(p)) order in
    let x = Array.map (fun p -> t.idxs.(p)) order in
    Array.blit d 0 t.dists lo m;
    Array.blit x 0 t.idxs lo m
  end

(* Enter bulk mode: recompute every in-range distance. The prefix already
   served from the cursor is discarded and reproduced by sorting — the
   order is deterministic, so ranks keep their values. *)
let enter_bulk t =
  let n = Kd_tree.size t.tree in
  let idxs = Array.make (Stdlib.max 1 n) 0
  and dists = Array.make (Stdlib.max 1 n) 0. in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let d = Point.dist t.query (Kd_tree.point t.tree i) in
    if d < t.max_dist then begin
      idxs.(!kept) <- i;
      dists.(!kept) <- d;
      incr kept
    end
  done;
  t.idxs <- idxs;
  t.dists <- dists;
  t.len <- !kept;
  t.sorted_upto <- 0;
  t.bulk <- true;
  t.cursor <- None

(* Extend the sorted prefix to cover rank [j] (1-based): quickselect the
   next geometric chunk, then sort just that chunk. *)
let extend_sorted t j =
  if j > t.sorted_upto && t.sorted_upto < t.len then begin
    let target =
      Stdlib.min t.len (Stdlib.max (Stdlib.max (2 * t.sorted_upto) j) 32)
    in
    select_prefix t t.sorted_upto t.len target;
    sort_range t t.sorted_upto target;
    t.sorted_upto <- target
  end

(* Switch to bulk mode either when the caller drains deep, or when the
   cursor's own effort exceeds what a full linear scan would have cost —
   in high dimension best-first search degenerates even for the first
   few ranks. *)
let should_switch t cursor j =
  j > t.switch_threshold
  || Kd_tree.work cursor > 2 * Kd_tree.size t.tree

let rec fill_to t j =
  if t.bulk then begin
    if t.len < 0 then enter_bulk t;
    extend_sorted t j
  end
  else if t.len >= j || t.exhausted then ()
  else
    match t.cursor with
    | None -> ()
    | Some cursor ->
        if should_switch t cursor j then begin
          enter_bulk t;
          extend_sorted t j
        end
        else (
          match Kd_tree.next cursor with
          | None -> t.exhausted <- true
          | Some (idx, dist) ->
              append t idx dist;
              fill_to t j)

let get t j =
  assert (j >= 1);
  fill_to t j;
  let available = if t.bulk then t.sorted_upto else t.len in
  if j <= available then Some (t.idxs.(j - 1), t.dists.(j - 1)) else None

let known t = if t.bulk then t.sorted_upto else t.len
