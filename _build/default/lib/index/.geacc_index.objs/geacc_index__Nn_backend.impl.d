lib/index/nn_backend.ml: Array I_distance Kd_tree Lazy Linear_index List Nn_stream Point Printf String Va_file
