lib/index/i_distance.ml: Array Float Geacc_pqueue Int List Point Stdlib
