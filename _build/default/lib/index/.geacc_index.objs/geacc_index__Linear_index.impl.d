lib/index/linear_index.ml: Array Float Int Point
