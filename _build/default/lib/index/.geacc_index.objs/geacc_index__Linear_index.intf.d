lib/index/linear_index.mli: Point
