lib/index/va_file.mli: Point
