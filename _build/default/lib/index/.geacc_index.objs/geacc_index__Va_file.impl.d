lib/index/va_file.ml: Array Bytes Char Float Geacc_pqueue Int Point Stdlib
