lib/index/nn_stream.ml: Array Float Int Kd_tree Point Stdlib
