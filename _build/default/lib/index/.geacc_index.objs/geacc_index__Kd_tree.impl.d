lib/index/kd_tree.ml: Array Float Geacc_pqueue Int List Point
