lib/index/kd_tree.mli: Point
