lib/index/nn_stream.mli: Kd_tree Point
