lib/index/nn_backend.mli: Point
