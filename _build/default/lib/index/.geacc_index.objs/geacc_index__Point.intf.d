lib/index/point.mli: Format
