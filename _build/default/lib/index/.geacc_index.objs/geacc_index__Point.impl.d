lib/index/point.ml: Array Format
