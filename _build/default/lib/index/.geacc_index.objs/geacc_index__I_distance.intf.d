lib/index/i_distance.mli: Point
