type t = { points : Point.t array }

let create points = { points }

let size t = Array.length t.points
let point t i = t.points.(i)

let by_dist_then_index (i1, d1) (i2, d2) =
  let c = Float.compare d1 d2 in
  if c <> 0 then c else Int.compare i1 i2

let all_sorted t q =
  let pairs = Array.mapi (fun i p -> (i, Point.dist q p)) t.points in
  Array.sort by_dist_then_index pairs;
  pairs

let nearest t q ~k =
  assert (k >= 0);
  let pairs = all_sorted t q in
  if k >= Array.length pairs then pairs else Array.sub pairs 0 k

let nearest_within t q ~k ~max_dist =
  let pairs = nearest t q ~k in
  let keep = ref (Array.length pairs) in
  (* Sorted ascending: find the cut point. *)
  (try
     Array.iteri
       (fun i (_, d) ->
         if d >= max_dist then begin
           keep := i;
           raise Exit
         end)
       pairs
   with Exit -> ());
  Array.sub pairs 0 !keep

let nth_nearest t q j =
  assert (j >= 1);
  if j > Array.length t.points then None else Some (all_sorted t q).(j - 1)
