(** Points in the d-dimensional attribute space.

    Attribute vectors are dense [float array]s; all indexes in this library
    share these distance primitives. *)

type t = float array

val dim : t -> int

val dist2 : t -> t -> float
(** Squared Euclidean distance. Requires equal dimensions. *)

val dist : t -> t -> float
(** Euclidean distance. *)

val min_dist2_to_box : t -> lo:t -> hi:t -> float
(** Squared distance from a point to an axis-aligned box (0 inside). *)

val bounding_box : t array -> int array -> lo:t -> hi:t -> unit
(** [bounding_box points idxs ~lo ~hi] writes into [lo]/[hi] the bounding box
    of [points.(i)] for [i] in [idxs]. Requires [idxs] non-empty. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
