(** Pluggable incremental nearest-neighbour backends.

    The paper treats the NN index as a black box with per-query cost σ(S)
    and names iDistance and VA-File as candidates. This module gives all
    indexes one shape — build over a point set, then per query an
    incremental stream of neighbours in ascending (distance, index) order —
    so solvers can be run against any backend and the index choice becomes
    an experimental variable (see the [ablation-index] benchmark). *)

type stream = {
  get : int -> (int * float) option;
      (** [get rank] is the [rank]-th (1-based) nearest point as
          [(index, distance)], restricted to distance < the stream's
          cutoff; [None] when fewer neighbours exist. Must be consistent
          across calls and support arbitrary rank order. *)
}

type index = {
  size : int;
  stream : query:Point.t -> max_dist:float -> stream;
      (** [max_dist] is an exclusive cutoff; [infinity] for none. *)
}

type t = {
  name : string;
  build : Point.t array -> index;
}

val kd_tree : t
(** {!Kd_tree} + {!Nn_stream}: best-first incremental search with the
    adaptive bulk fallback. The library default. *)

val linear : t
(** Full scan sorted lazily per query — the honest baseline every other
    backend must beat (and the correctness oracle). *)

val va_file : t
(** {!Va_file}: quantised vector approximations with exact refinement. *)

val i_distance : t
(** {!I_distance}: reference-point partitions with expanding-radius
    search. *)

val all : t list
(** Every backend, {!kd_tree} first. *)

val of_string : string -> (t, string) result
(** Parses a backend name: ["kd"], ["linear"], ["vafile"] or
    ["idistance"]. *)
