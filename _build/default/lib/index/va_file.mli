(** VA-File: vector-approximation index (Weber, Schek & Blott, VLDB'98 —
    the paper's reference [8]).

    Each point is quantised to a few bits per dimension over an equi-width
    grid. A query first scans the compact approximations, computing a lower
    bound on every point's distance from per-dimension cell tables, and
    only {e refines} (computes the exact distance of) points whose lower
    bound beats the best exact distances seen so far. In the original
    system this saves disk reads of full vectors; in memory it saves the
    O(d) exact-distance arithmetic, which is what {!refinements} counts.

    Incremental k-NN: candidates are visited in ascending lower-bound
    order; a point is emitted once its exact distance is no greater than
    the next candidate's lower bound, which yields the exact
    (distance, index) order. *)

type t

val build : ?bits_per_dim:int -> Point.t array -> t
(** Quantises the points; [bits_per_dim] in [\[1, 8\]] (default 4, i.e. 16
    cells per dimension). *)

val size : t -> int

val approximation_bytes : t -> int
(** Size of the approximation file: [n · d] bytes (one code byte per
    dimension). *)

type stream

val stream : t -> query:Point.t -> max_dist:float -> stream
(** Neighbours of [query] in ascending (distance, index) order, restricted
    to distance < [max_dist] ([infinity] for unrestricted). *)

val get : stream -> int -> (int * float) option
(** [get s rank] — 1-based, random access, memoised. *)

val refinements : stream -> int
(** Exact-distance computations performed so far by this stream; at most
    [size], typically far fewer for shallow ranks. *)
