(** iDistance: reference-point index (Jagadish et al., TODS'05 — the
    paper's reference [7]).

    Points are partitioned by their nearest reference point and stored,
    per partition, sorted by distance to that reference (the one-dimensional
    "iDistance" key that the original system keeps in a B+-tree). A k-NN
    query expands an annulus [dist(q, ref) ± R] in every partition with
    geometrically growing radius R; by the triangle inequality every point
    outside the explored annuli is farther than R, so candidates with exact
    distance <= R can be emitted in exact (distance, index) order. *)

type t

val build : ?n_references:int -> Point.t array -> t
(** [n_references] defaults to [max 1 (min 64 (sqrt n))]. Reference points
    are chosen deterministically by farthest-point sampling. *)

val size : t -> int
val n_references : t -> int

type stream

val stream : t -> query:Point.t -> max_dist:float -> stream
(** Neighbours of [query] in ascending (distance, index) order, restricted
    to distance < [max_dist]. *)

val get : stream -> int -> (int * float) option
(** [get s rank] — 1-based, random access, memoised. *)

val evaluations : stream -> int
(** Exact-distance computations performed so far by this stream. *)
