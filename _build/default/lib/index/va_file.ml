type t = {
  points : Point.t array;
  dim : int;
  cells : int;                 (* cells per dimension = 2^bits *)
  boundaries : float array array;  (* per dim, [cells + 1] cell edges *)
  codes : Bytes.t;             (* n * dim cell codes, one byte each *)
}

let code t p j = Char.code (Bytes.get t.codes ((p * t.dim) + j))

let build ?(bits_per_dim = 4) points =
  if bits_per_dim < 1 || bits_per_dim > 8 then
    invalid_arg "Va_file.build: bits_per_dim must be in [1, 8]";
  let n = Array.length points in
  let dim = if n = 0 then 1 else Array.length points.(0) in
  let cells = 1 lsl bits_per_dim in
  let boundaries =
    Array.init dim (fun j ->
        let lo = ref infinity and hi = ref neg_infinity in
        Array.iter
          (fun p ->
            if p.(j) < !lo then lo := p.(j);
            if p.(j) > !hi then hi := p.(j))
          points;
        if n = 0 then (lo := 0.; hi := 1.);
        (* Degenerate dimension: a single-cell-wide box. *)
        if !hi <= !lo then hi := !lo +. 1.;
        let width = (!hi -. !lo) /. float_of_int cells in
        Array.init (cells + 1) (fun c -> !lo +. (float_of_int c *. width)))
  in
  let codes = Bytes.create (Stdlib.max 1 (n * dim)) in
  let cell_of j x =
    let b = boundaries.(j) in
    let lo = b.(0) and hi = b.(cells) in
    if x <= lo then 0
    else if x >= hi then cells - 1
    else
      let c = int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int cells) in
      Stdlib.min (cells - 1) (Stdlib.max 0 c)
  in
  Array.iteri
    (fun p point ->
      for j = 0 to dim - 1 do
        Bytes.set codes ((p * dim) + j) (Char.chr (cell_of j point.(j)))
      done)
    points;
  { points; dim; cells; boundaries; codes }

let size t = Array.length t.points
let approximation_bytes t = Array.length t.points * t.dim

module Heap = Geacc_pqueue.Binary_heap

type candidate = { dist : float; id : int }

let candidate_cmp c1 c2 =
  let c = Float.compare c1.dist c2.dist in
  if c <> 0 then c else Int.compare c1.id c2.id

type stream = {
  index : t;
  max_dist : float;
  by_lower_bound : int array;   (* point ids in ascending (lb, id) order *)
  lower_bounds : float array;   (* lb per position of [by_lower_bound] *)
  exact : candidate Heap.t;     (* refined but not yet emitted *)
  mutable cursor : int;         (* next unrefined position *)
  mutable emitted_ids : int array;
  mutable emitted_dists : float array;
  mutable emitted : int;
  mutable refinements : int;
  query : Point.t;
}

(* Per-dimension table of squared lower-bound contributions per cell. *)
let lb_tables t query =
  Array.init t.dim (fun j ->
      let b = t.boundaries.(j) in
      Array.init t.cells (fun c ->
          let lo = b.(c) and hi = b.(c + 1) in
          let q = query.(j) in
          if q < lo then (lo -. q) *. (lo -. q)
          else if q > hi then (q -. hi) *. (q -. hi)
          else 0.))

let stream t ~query ~max_dist =
  let n = size t in
  let tables = lb_tables t query in
  let lb = Array.make n 0. in
  for p = 0 to n - 1 do
    let acc = ref 0. in
    for j = 0 to t.dim - 1 do
      acc := !acc +. tables.(j).(code t p j)
    done;
    lb.(p) <- sqrt !acc
  done;
  let by_lower_bound = Array.init n (fun p -> p) in
  Array.sort
    (fun p1 p2 ->
      let c = Float.compare lb.(p1) lb.(p2) in
      if c <> 0 then c else Int.compare p1 p2)
    by_lower_bound;
  let lower_bounds = Array.map (fun p -> lb.(p)) by_lower_bound in
  {
    index = t;
    max_dist;
    by_lower_bound;
    lower_bounds;
    exact = Heap.create ~cmp:candidate_cmp ();
    cursor = 0;
    emitted_ids = [||];
    emitted_dists = [||];
    emitted = 0;
    refinements = 0;
    query;
  }

let record s id dist =
  if s.emitted = Array.length s.emitted_ids then begin
    let capacity = Stdlib.max 8 (2 * s.emitted) in
    let ids = Array.make capacity 0 and dists = Array.make capacity 0. in
    Array.blit s.emitted_ids 0 ids 0 s.emitted;
    Array.blit s.emitted_dists 0 dists 0 s.emitted;
    s.emitted_ids <- ids;
    s.emitted_dists <- dists
  end;
  s.emitted_ids.(s.emitted) <- id;
  s.emitted_dists.(s.emitted) <- dist;
  s.emitted <- s.emitted + 1

(* Produce one more neighbour, or return false when the stream is dry.
   Invariant: everything still unrefined has lower bound >= any refined
   candidate pulled so far only once the pull loop below has run, so the
   heap minimum is the true next neighbour. *)
let produce s =
  let n = Array.length s.by_lower_bound in
  let continue = ref true in
  while
    !continue && s.cursor < n
    && (Heap.is_empty s.exact
       ||
       match Heap.peek_exn s.exact with
       | { dist; _ } -> s.lower_bounds.(s.cursor) <= dist)
  do
    if s.lower_bounds.(s.cursor) >= s.max_dist then begin
      (* All remaining lower bounds are at least the cutoff. *)
      s.cursor <- n;
      continue := false
    end
    else begin
      let id = s.by_lower_bound.(s.cursor) in
      let d = Point.dist s.query s.index.points.(id) in
      s.refinements <- s.refinements + 1;
      if d < s.max_dist then Heap.push s.exact { dist = d; id };
      s.cursor <- s.cursor + 1
    end
  done;
  match Heap.pop s.exact with
  | Some { dist; id } ->
      record s id dist;
      true
  | None -> false

let rec get s rank =
  assert (rank >= 1);
  if rank <= s.emitted then Some (s.emitted_ids.(rank - 1), s.emitted_dists.(rank - 1))
  else if produce s then get s rank
  else None

let refinements s = s.refinements
