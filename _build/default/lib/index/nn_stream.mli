(** Cached random-access view of a nearest-neighbour enumeration.

    Greedy-GEACC and Prune-GEACC repeatedly ask for "the j-th nearest
    neighbour of node x" with j advancing independently per node. A stream
    serves rank [j] in O(1) once materialised, pulling new ranks from a
    {!Kd_tree.cursor}.

    Incremental best-first search is ideal for shallow ranks but degrades
    in high dimension (the frontier stops pruning anything). A stream
    therefore switches to a {e bulk} regime — every in-range distance
    computed once, ranks served from a prefix sorted incrementally by
    quickselect — whenever any of three signals fires: the dimension is
    >= 10 (best-first search is hopeless there, cf. the VA-File argument),
    the cursor's frontier work exceeds twice a linear scan, or the caller
    drains past [switch_threshold] ranks. Both regimes produce the
    identical (distance, index) order, so the switch is invisible: a
    stream drained to depth m costs O(n + m log m) instead of O(n) heap
    work per rank. *)

type t

val create : Kd_tree.t -> Point.t -> ?max_dist:float -> ?switch_threshold:int ->
  unit -> t
(** Stream of neighbours of the query in ascending (distance, index) order,
    cut off at [max_dist] (exclusive) when given. [switch_threshold]
    (default 64) is the materialised-rank count beyond which the stream
    enters the bulk regime ([0] forces it on first access); note the
    dimension and frontier-work signals can trigger the switch earlier
    regardless of this threshold. *)

val get : t -> int -> (int * float) option
(** [get t j] is the [j]-th nearest neighbour (1-based) as
    [(point index, distance)], or [None] if fewer than [j] neighbours exist
    within the cutoff. *)

val known : t -> int
(** Number of neighbours materialised so far. *)
