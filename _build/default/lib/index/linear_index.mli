(** Exact nearest-neighbour queries by linear scan.

    O(n) per query, no preprocessing beyond storing the points. This is both
    a baseline implementation for small instances and the correctness oracle
    for {!Kd_tree} in the test suite. Ties in distance are broken by point
    index, so results are deterministic. *)

type t

val create : Point.t array -> t
(** The array is not copied; callers must not mutate the points. *)

val size : t -> int
val point : t -> int -> Point.t

val nearest : t -> Point.t -> k:int -> (int * float) array
(** [nearest t q ~k] returns up to [k] (index, distance) pairs in ascending
    (distance, index) order. *)

val nearest_within : t -> Point.t -> k:int -> max_dist:float -> (int * float) array
(** Like {!nearest} but drops results with distance >= [max_dist]. *)

val nth_nearest : t -> Point.t -> int -> (int * float) option
(** [nth_nearest t q j] is the [j]-th nearest point (1-based), or [None] if
    [j > size t]. *)
