(** Streaming univariate statistics (Welford's algorithm).

    Used by the benchmark harness to aggregate repeated measurements and by
    tests to check distribution moments without storing samples. *)

type t
(** Mutable accumulator. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** Sample standard deviation; 0 when [count < 2]. *)
  min : float;     (** [nan] when empty. *)
  max : float;     (** [nan] when empty. *)
  sum : float;
}

val create : unit -> t
val add : t -> float -> unit
val add_seq : t -> float Seq.t -> unit
val count : t -> int
val mean : t -> float
val stddev : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float
val summarize : t -> summary
val of_array : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
