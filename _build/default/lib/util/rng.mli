(** Deterministic pseudo-random number generation.

    A self-contained SplitMix64 generator. Every random choice in the
    repository flows through this module so that experiments, tests and
    examples are reproducible from a single integer seed. The generator is
    splittable: {!split} derives an independent stream, which lets data
    generators hand out per-entity streams without sequencing artefacts. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting at [t]'s current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. Requires [x > 0.]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in uniformly random order. Requires [0 <= k <= n]. *)
