type t = {
  title : string;
  headers : string list;
  width : int;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~headers =
  { title; headers; width = List.length headers; rows = [] }

let add_row t cells =
  let n = List.length cells in
  if n > t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells but %d headers" n t.width);
  let padded =
    if n = t.width then cells
    else cells @ List.init (t.width - n) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let add_float_row t ~label values =
  add_row t (label :: List.map (Printf.sprintf "%.4g") values)

let all_rows t = t.headers :: List.rev t.rows

let render t =
  let rows = all_rows t in
  let widths = Array.make t.width 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    rows;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad i cell =
    let fill = widths.(i) - String.length cell in
    cell ^ String.make fill ' '
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  (match rows with
  | header :: data ->
      emit_row header;
      let total =
        Array.fold_left ( + ) 0 widths + (2 * (t.width - 1))
      in
      Buffer.add_string buf (String.make total '-');
      Buffer.add_char buf '\n';
      List.iter emit_row data
  | [] -> ());
  Buffer.contents buf

let csv_cell cell =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quote then cell
  else
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map csv_cell row));
      Buffer.add_char buf '\n')
    (all_rows t);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
