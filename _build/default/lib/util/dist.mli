(** Probability distributions used by the workload generators.

    The paper generates attribute values and capacities from Uniform, Normal
    and Zipf distributions (TABLE II / TABLE III). A {!t} describes a
    distribution over a real interval; {!sampler} compiles it into a fast
    draw function (the Zipf case precomputes its inverse CDF once). *)

type t =
  | Uniform of { lo : float; hi : float }
      (** Uniform on [\[lo, hi\]]. Requires [lo <= hi]. *)
  | Normal of { mu : float; sigma : float; lo : float; hi : float }
      (** Gaussian truncated (by resampling) to [\[lo, hi\]]. *)
  | Zipf of { exponent : float; n : int; lo : float; hi : float }
      (** Zipf law with the given exponent over ranks [1..n]; rank [k] is
          mapped affinely onto [\[lo, hi\]] (rank 1 -> lo, rank n -> hi), so
          small values are the frequent ones. Requires [n >= 1],
          [exponent > 0]. *)

val uniform : float -> float -> t
(** [uniform lo hi] is [Uniform {lo; hi}]. *)

val normal : ?lo:float -> ?hi:float -> mu:float -> sigma:float -> unit -> t
(** [normal ~mu ~sigma ()] truncated to [\[lo, hi\]] (defaults: mean ± 6σ). *)

val zipf : ?exponent:float -> n:int -> lo:float -> hi:float -> unit -> t
(** [zipf ~n ~lo ~hi ()] with the paper's default exponent 1.3. *)

val sampler : t -> (Rng.t -> float)
(** [sampler d] compiles [d]; the returned closure draws one value. *)

val sample : t -> Rng.t -> float
(** One-shot draw (compiles on every call — prefer {!sampler} in loops). *)

val sample_int : t -> Rng.t -> int
(** Draw and round to nearest integer (the paper converts all generated
    capacities to integers). *)

val mean_bounds : t -> float * float
(** [mean_bounds d] is the support interval [(lo, hi)] of [d]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable description, e.g. ["Uniform[1,50]"]. *)
