lib/util/stats.mli: Format Seq
