lib/util/measure.ml: Atomic Float Format Fun Gc Stdlib Sys Thread Unix
