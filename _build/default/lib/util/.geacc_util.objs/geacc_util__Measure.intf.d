lib/util/measure.mli: Format
