lib/util/table.mli:
