lib/util/rng.mli:
