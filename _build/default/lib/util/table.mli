(** Plain-text table rendering for experiment reports.

    The benchmark harness prints each paper figure as an aligned ASCII table
    (one row per sweep point, one column per algorithm/metric) and can emit
    the same data as CSV for plotting. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : title:string -> headers:string list -> t
val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_float_row : t -> label:string -> float list -> unit
(** Convenience: label cell followed by [%.4g]-formatted numbers. *)

val render : t -> string
(** Aligned ASCII rendering, including the title and a separator rule. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
