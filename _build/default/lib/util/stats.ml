type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable sum : float;
}

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  sum : float;
}

let create () : t =
  { count = 0; mean = 0.; m2 = 0.; min = nan; max = nan; sum = 0. }

let add (t : t) x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.count = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add_seq t seq = Seq.iter (add t) seq

let count (t : t) = t.count
let mean (t : t) = if t.count = 0 then nan else t.mean

let stddev (t : t) =
  if t.count < 2 then 0. else sqrt (t.m2 /. float_of_int (t.count - 1))

let min (t : t) = t.min
let max (t : t) = t.max
let sum (t : t) = t.sum

let summarize (t : t) : summary =
  {
    count = t.count;
    mean = mean t;
    stddev = stddev t;
    min = t.min;
    max = t.max;
    sum = t.sum;
  }

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  summarize t

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" s.count s.mean
    s.stddev s.min s.max
