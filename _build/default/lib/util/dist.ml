type t =
  | Uniform of { lo : float; hi : float }
  | Normal of { mu : float; sigma : float; lo : float; hi : float }
  | Zipf of { exponent : float; n : int; lo : float; hi : float }

let uniform lo hi =
  assert (lo <= hi);
  Uniform { lo; hi }

let normal ?lo ?hi ~mu ~sigma () =
  assert (sigma >= 0.);
  let lo = match lo with Some x -> x | None -> mu -. (6. *. sigma) in
  let hi = match hi with Some x -> x | None -> mu +. (6. *. sigma) in
  assert (lo <= hi);
  Normal { mu; sigma; lo; hi }

let zipf ?(exponent = 1.3) ~n ~lo ~hi () =
  assert (n >= 1 && exponent > 0. && lo <= hi);
  Zipf { exponent; n; lo; hi }

(* Box–Muller. We deliberately do not cache the second variate: a stateless
   draw keeps streams reproducible under [Rng.split]. *)
let draw_gaussian rng mu sigma =
  let rec nonzero () =
    let u = Rng.float_in rng 0. 1. in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = Rng.float_in rng 0. 1. in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let gaussian_truncated rng mu sigma lo hi =
  if sigma = 0. then Float.min hi (Float.max lo mu)
  else begin
    let rec loop attempts =
      let x = draw_gaussian rng mu sigma in
      if x >= lo && x <= hi then x
      else if attempts > 64 then Float.min hi (Float.max lo x)
      else loop (attempts + 1)
    in
    loop 0
  end

(* Inverse-CDF Zipf sampler. The cumulative weights are precomputed once; a
   draw is a binary search, O(log n). *)
let zipf_sampler exponent n lo hi =
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int k) exponent);
    cdf.(k - 1) <- !acc
  done;
  let total = !acc in
  let value_of_rank k =
    if n = 1 then lo
    else lo +. ((hi -. lo) *. float_of_int (k - 1) /. float_of_int (n - 1))
  in
  fun rng ->
    let target = Rng.float_in rng 0. total in
    (* Smallest index with cdf.(i) >= target. *)
    let rec search lo_i hi_i =
      if lo_i >= hi_i then lo_i
      else
        let mid = (lo_i + hi_i) / 2 in
        if cdf.(mid) >= target then search lo_i mid else search (mid + 1) hi_i
    in
    value_of_rank (search 0 (n - 1) + 1)

let sampler = function
  | Uniform { lo; hi } ->
      if lo = hi then fun _ -> lo else fun rng -> Rng.float_in rng lo hi
  | Normal { mu; sigma; lo; hi } -> fun rng -> gaussian_truncated rng mu sigma lo hi
  | Zipf { exponent; n; lo; hi } -> zipf_sampler exponent n lo hi

let sample d rng = sampler d rng

let sample_int d rng = int_of_float (Float.round (sample d rng))

let mean_bounds = function
  | Uniform { lo; hi } | Normal { lo; hi; _ } | Zipf { lo; hi; _ } -> (lo, hi)

let pp ppf = function
  | Uniform { lo; hi } -> Format.fprintf ppf "Uniform[%g,%g]" lo hi
  | Normal { mu; sigma; _ } -> Format.fprintf ppf "Normal(mu=%g,sigma=%g)" mu sigma
  | Zipf { exponent; n; _ } -> Format.fprintf ppf "Zipf(s=%g,n=%d)" exponent n
