type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_int64

let split t =
  let seed = next_int64 t in
  (* Mix once more so that [split] streams differ from sequential output. *)
  { state = Int64.mul seed 0xD1342543DE82EF95L }

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t n =
  assert (n > 0);
  if n <= 1 lsl 30 then bits30 t mod n
  else
    (* 62 uniform bits for large ranges. *)
    let hi = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    hi mod n

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 bits of mantissa, uniform in [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. 0x1p-53

let float t x =
  assert (x > 0.);
  unit_float t *. x

let float_in t lo hi =
  assert (lo < hi);
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else unit_float t < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  if k = 0 then [||]
  else if 3 * k >= n then begin
    (* Dense case: shuffle a full permutation prefix. *)
    let a = Array.init n (fun i -> i) in
    shuffle_in_place t a;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = int t n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end
