lib/pqueue/float_int_heap.ml: Array Stdlib
