lib/pqueue/float_int_heap.mli:
