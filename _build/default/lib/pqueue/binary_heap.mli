(** Mutable array-backed binary heap.

    The heap is a {e min}-heap with respect to the comparison supplied at
    creation; pass a flipped comparison for max-heap behaviour (as
    Greedy-GEACC does to pop the most similar pair first). All operations are
    the textbook complexities: [push]/[pop] are O(log n), [peek] O(1),
    [of_array] O(n) via bottom-up heapify. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** Empty heap ordered by [cmp] (smallest element on top). *)

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Bottom-up heapify of a copy of the array, O(n). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val peek_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> 'a option
val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val pop_all_sorted : 'a t -> 'a list
(** Drains the heap; elements in ascending [cmp] order. *)

val check_invariant : 'a t -> bool
(** [true] iff every parent orders no later than its children (test hook). *)
