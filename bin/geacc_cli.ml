(* geacc: command-line front end for the GEACC library.

   Subcommands: generate (synthetic / meetup instances), solve, validate,
   info. Exit codes: 0 success, 1 usage/parse/input error, 2 infeasible
   matching (validate), 3 feasible-but-degraded result (solve under
   --timeout/--fallback: a deadline, fault or fallback kept the run from
   completing its preferred algorithm). *)

open Cmdliner
open Geacc_core
module Robust = Geacc_robust

let exit_degraded = 3

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "geacc: %s\n" msg;
      exit 1)
    fmt

(* A malformed fault plan must not silently disable the faults a CI job
   believes it is injecting. *)
let check_fault_plan () =
  match Robust.Fault.plan_error () with
  | None -> ()
  | Some e -> die "malformed GEACC_FAULTS: %s" e

let load_instance_or_die ?backend path =
  check_fault_plan ();
  match Geacc_io.Instance_io.read_instance_result ~path with
  | Error e -> die "%s" (Robust.Error.to_string e)
  | Ok instance -> (
      match backend with
      | None -> instance
      | Some b -> Instance.with_backend instance b)

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* -- shared arguments ------------------------------------------------- *)

let seed_arg =
  let doc = "Random seed (all generation and baselines are deterministic)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let instance_arg =
  let doc = "Path to a geacc-instance file." in
  Arg.(required & opt (some file) None & info [ "instance"; "i" ] ~docv:"FILE" ~doc)

let backend_conv =
  let parse s =
    Geacc_index.Nn_backend.of_string s |> Result.map_error (fun e -> `Msg e)
  in
  let print ppf (b : Geacc_index.Nn_backend.t) =
    Format.pp_print_string ppf b.Geacc_index.Nn_backend.name
  in
  Arg.conv (parse, print)

let index_arg =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "index" ] ~docv:"BACKEND"
        ~doc:
          "NN index backend serving the solvers' neighbour queries: kd \
           (default), linear, vafile or idistance.")

let algorithm_conv =
  let parse s = Solver.of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf a = Format.pp_print_string ppf (Solver.short_name a) in
  Arg.conv (parse, print)

(* -- generate --------------------------------------------------------- *)

let attrs_conv =
  let parse = function
    | "uniform" -> Ok Geacc_datagen.Synthetic.Attr_uniform
    | "zipf" -> Ok (Geacc_datagen.Synthetic.Attr_zipf 1.3)
    | "normal" -> Ok Geacc_datagen.Synthetic.Attr_normal_mixture
    | s -> Error (`Msg (Printf.sprintf "unknown attribute model %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | Geacc_datagen.Synthetic.Attr_uniform -> "uniform"
      | Geacc_datagen.Synthetic.Attr_zipf _ -> "zipf"
      | Geacc_datagen.Synthetic.Attr_normal_mixture -> "normal")
  in
  Arg.conv (parse, print)

let city_conv =
  let parse s =
    let s = String.lowercase_ascii s in
    match
      List.find_opt
        (fun (c : Geacc_datagen.Meetup.city) ->
          String.lowercase_ascii c.Geacc_datagen.Meetup.name = s)
        Geacc_datagen.Meetup.cities
    with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown city %S (vancouver, auckland, singapore)"
                s))
  in
  let print ppf (c : Geacc_datagen.Meetup.city) =
    Format.pp_print_string ppf c.Geacc_datagen.Meetup.name
  in
  Arg.conv (parse, print)

let generate_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output instance file.")
  in
  let events =
    Arg.(value & opt int 100 & info [ "events" ] ~docv:"N" ~doc:"Number of events |V|.")
  in
  let users =
    Arg.(value & opt int 1000 & info [ "users" ] ~docv:"N" ~doc:"Number of users |U|.")
  in
  let dim = Arg.(value & opt int 20 & info [ "dim" ] ~docv:"D" ~doc:"Attribute dimensionality.") in
  let tmax = Arg.(value & opt float 10000. & info [ "tmax" ] ~docv:"T" ~doc:"Attribute range T.") in
  let attrs =
    Arg.(
      value
      & opt attrs_conv Geacc_datagen.Synthetic.Attr_uniform
      & info [ "attrs" ] ~docv:"MODEL" ~doc:"Attribute model: uniform, zipf or normal.")
  in
  let cv_max =
    Arg.(value & opt int 50 & info [ "cv-max" ] ~docv:"N" ~doc:"Event capacities Uniform[1,N].")
  in
  let cu_max =
    Arg.(value & opt int 4 & info [ "cu-max" ] ~docv:"N" ~doc:"User capacities Uniform[1,N].")
  in
  let conflict_ratio =
    Arg.(
      value & opt float 0.25
      & info [ "conflict-ratio" ] ~docv:"R"
          ~doc:"Conflicting fraction of event pairs, in [0,1].")
  in
  let meetup =
    Arg.(
      value
      & opt (some city_conv) None
      & info [ "meetup" ] ~docv:"CITY"
          ~doc:
            "Generate the simulated Meetup dataset for CITY instead of the \
             synthetic model (vancouver, auckland or singapore).")
  in
  let run () out events users dim tmax attrs cv_max cu_max conflict_ratio
      meetup seed =
    let instance =
      match meetup with
      | Some city ->
          Geacc_datagen.Meetup.generate ~seed ~conflict_ratio city
      | None ->
          Geacc_datagen.Synthetic.generate ~seed
            {
              Geacc_datagen.Synthetic.n_events = events;
              n_users = users;
              dim;
              t_max = tmax;
              attrs;
              event_capacity = Geacc_datagen.Synthetic.Cap_uniform cv_max;
              user_capacity = Geacc_datagen.Synthetic.Cap_uniform cu_max;
              conflict_ratio;
            }
    in
    Geacc_io.Instance_io.write_instance ~path:out instance;
    Logs.app (fun m ->
        m "wrote %s: %a" out Instance.pp_summary instance)
  in
  let term =
    Term.(
      const run $ logs_term $ out $ events $ users $ dim $ tmax $ attrs
      $ cv_max $ cu_max $ conflict_ratio $ meetup $ seed_arg)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic or simulated-Meetup instance.")
    term

(* -- solve ------------------------------------------------------------ *)

let write_matching_opt out matching =
  match out with
  | None -> ()
  | Some path ->
      Geacc_io.Instance_io.write_pairs ~path (Matching.pairs matching);
      Logs.app (fun f -> f "wrote matching to %s" path)

(* The anytime path: run the fallback chain (or a single budgeted
   algorithm), report status on stdout, telemetry on stderr, and map a
   degraded-but-feasible result to a distinct exit code so schedulers can
   tell "optimal" from "best effort by the deadline". *)
let solve_anytime instance ~algorithm ~fallback ~timeout ~stage_timeout
    ~max_retries ~out =
  let algorithms =
    if fallback then Anytime.default_chain else [ algorithm ]
  in
  match
    Anytime.solve ?timeout_s:timeout ?stage_timeout_s:stage_timeout
      ~max_retries ~algorithms instance
  with
  | Error e -> die "%s" (Robust.Error.to_string e)
  | Ok r ->
      let status_line =
        match (r.Anytime.status, r.Anytime.reason) with
        | Robust.Chain.Complete, _ -> "complete"
        | Robust.Chain.Degraded, Some reason ->
            Printf.sprintf "degraded (%s)" reason
        | Robust.Chain.Degraded, None -> "degraded"
      in
      Printf.printf
        "algorithm: %s\nMaxSum: %.6f\nmatched pairs: %d\nstatus: %s\ntime: %.3f ms\n"
        (Solver.name r.Anytime.algorithm)
        (Matching.maxsum r.Anytime.matching)
        (Matching.size r.Anytime.matching)
        status_line
        (r.Anytime.elapsed_s *. 1000.);
      Printf.eprintf
        "anytime: status=%s stage=%s stages-tried=%d fallbacks=%d retries=%d \
         faults=%d injected-faults=%d audit-violations=%d\n"
        (match r.Anytime.status with
        | Robust.Chain.Complete -> "complete"
        | Robust.Chain.Degraded -> "degraded")
        (Solver.short_name r.Anytime.algorithm)
        r.Anytime.stages_tried r.Anytime.fallbacks r.Anytime.retries
        r.Anytime.faults
        (Robust.Fault.fires ())
        (Geacc_check.Audit.violations ());
      let table =
        Geacc_util.Table.create ~title:"fallback chain trace"
          ~headers:[ "stage"; "attempt"; "verdict"; "seconds" ]
      in
      List.iter
        (fun (t : Robust.Chain.trace_entry) ->
          Geacc_util.Table.add_row table
            [
              t.Robust.Chain.t_stage;
              string_of_int t.Robust.Chain.t_attempt;
              Format.asprintf "%a" Robust.Chain.pp_verdict
                t.Robust.Chain.t_verdict;
              Printf.sprintf "%.3f" t.Robust.Chain.t_seconds;
            ])
        r.Anytime.trace;
      prerr_string (Geacc_util.Table.render table);
      write_matching_opt out r.Anytime.matching;
      flush stdout;
      flush stderr;
      match r.Anytime.status with
      | Robust.Chain.Complete -> ()
      | Robust.Chain.Degraded -> exit exit_degraded

let solve_online_order instance ~order ~out =
  match Online.solve ~order:(Array.of_list order) instance with
  | Error e -> die "%s" (Robust.Error.to_string e)
  | Ok matching ->
      Printf.printf "algorithm: %s\nMaxSum: %.6f\nmatched pairs: %d\n"
        (Solver.name Solver.Online)
        (Matching.maxsum matching) (Matching.size matching);
      write_matching_opt out matching

let solve_cmd =
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Solver.Greedy
      & info [ "algorithm"; "a" ] ~docv:"ALGO"
          ~doc:
            "Algorithm: greedy, mincostflow, prune, exhaustive, random-v or \
             random-u.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the matching to FILE.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Overall time budget. The solvers become anytime: on expiry the \
             best feasible matching found so far is returned, the result is \
             marked degraded and the exit code is 3.")
  in
  let stage_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "stage-timeout" ] ~docv:"SECS"
          ~doc:"Additional per-stage cap within the overall $(b,--timeout).")
  in
  let fallback =
    Arg.(
      value & flag
      & info [ "fallback" ]
          ~doc:
            "Run the quality-first fallback chain exhaustive -> prune -> \
             mincostflow -> greedy instead of a single algorithm; the best \
             candidate by MaxSum wins.")
  in
  let max_retries =
    Arg.(
      value & opt int 1
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Retries per stage for transient faults (with backoff).")
  in
  let order =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "order" ] ~docv:"IDS"
          ~doc:
            "Comma-separated user arrival order for $(b,-a online); must be \
             a permutation of the user ids.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel phases (network construction, \
             index build). Defaults to $(b,GEACC_JOBS) or 1. Results are \
             byte-identical for every N.")
  in
  let network =
    let network_conv =
      let parse s =
        Mincostflow.network_of_string s
        |> Result.map_error (fun e -> `Msg e)
      in
      let print ppf n =
        Format.pp_print_string ppf (Mincostflow.network_name n)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt network_conv (Mincostflow.default_network ())
      & info [ "network" ] ~docv:"KIND"
          ~doc:
            "Flow-network construction for $(b,-a mincostflow): $(b,sparse) \
             (similarity-pruned candidate arcs, the default) or $(b,dense) \
             (one arc per (v,u) pair as in the paper). Both produce the \
             same matching.")
  in
  let min_sim =
    Arg.(
      value & opt float 0.
      & info [ "min-sim" ] ~docv:"TAU"
          ~doc:
            "Similarity gate for the sparse network: only pairs with sim \
             >= TAU get an arc (TAU > 0 trades matching quality for \
             speed). Requires 0 <= TAU <= 1.")
  in
  let cost_kernel =
    let kernel_conv =
      let parse s =
        Mincostflow.kernel_of_string s |> Result.map_error (fun e -> `Msg e)
      in
      let print ppf k =
        Format.pp_print_string ppf (Mincostflow.kernel_name k)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt kernel_conv (Mincostflow.default_cost_kernel ())
      & info [ "cost-kernel" ] ~docv:"KIND"
          ~doc:
            "SSP arithmetic for $(b,-a mincostflow): $(b,int) (quantised \
             integer Dijkstra over a bucket queue, the default) or \
             $(b,float) (the reference float-keyed heap). Both produce \
             the same matching; only speed differs.")
  in
  let run () instance_path algorithm out seed backend timeout stage_timeout
      fallback max_retries order jobs network min_sim cost_kernel =
    (match jobs with
    | None -> ()
    | Some j when j >= 1 -> Geacc_par.Pool.set_default_jobs j
    | Some j -> die "--jobs expects a positive integer, got %d" j);
    Mincostflow.set_default_network network;
    Mincostflow.set_default_cost_kernel cost_kernel;
    if not (min_sim >= 0. && min_sim <= 1.) then
      die "--min-sim expects a value in [0, 1], got %g" min_sim;
    Mincostflow.set_default_min_sim min_sim;
    let instance = load_instance_or_die ?backend instance_path in
    match order with
    | Some order ->
        if algorithm <> Solver.Online then
          die "--order only applies to --algorithm online";
        solve_online_order instance ~order ~out
    | None ->
        if fallback || timeout <> None || stage_timeout <> None then
          solve_anytime instance ~algorithm ~fallback ~timeout ~stage_timeout
            ~max_retries ~out
        else begin
          let m =
            Geacc_bench.Harness.measure ~seed algorithm (fun () -> instance)
          in
          Printf.printf
            "algorithm: %s\nMaxSum: %.6f\nmatched pairs: %d\ntime: %.3f ms\nmemory: %.1f KB\n"
            (Solver.name m.Geacc_bench.Harness.algorithm)
            m.Geacc_bench.Harness.maxsum m.Geacc_bench.Harness.matched_pairs
            (m.Geacc_bench.Harness.wall_s *. 1000.)
            (float_of_int m.Geacc_bench.Harness.live_bytes /. 1024.);
          match out with
          | None -> ()
          | Some _ ->
              let rng = Geacc_util.Rng.create ~seed in
              write_matching_opt out (Solver.run ~rng algorithm instance)
        end
  in
  let term =
    Term.(
      const run $ logs_term $ instance_arg $ algorithm $ out $ seed_arg
      $ index_arg $ timeout $ stage_timeout $ fallback $ max_retries $ order
      $ jobs $ network $ min_sim $ cost_kernel)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve an instance and report MaxSum/time/memory.")
    term

(* -- validate ---------------------------------------------------------- *)

let validate_cmd =
  let matching_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "matching"; "m" ] ~docv:"FILE" ~doc:"Path to a geacc-matching file.")
  in
  let run () instance_path matching_path =
    let instance = load_instance_or_die instance_path in
    let pairs =
      try Geacc_io.Instance_io.read_pairs ~path:matching_path with
      | Geacc_io.Instance_io.Parse_error { line; message } ->
          die "%s"
            (Robust.Error.to_string
               (Robust.Error.Parse_error { line; message }))
      | Sys_error message ->
          die "%s"
            (Robust.Error.to_string
               (Robust.Error.Io_error { path = matching_path; message }))
    in
    match Validate.check instance pairs with
    | [] ->
        let maxsum =
          List.fold_left
            (fun acc (v, u) -> acc +. Instance.sim instance ~v ~u)
            0. pairs
        in
        Printf.printf "feasible: %d pairs, MaxSum %.6f\n" (List.length pairs)
          maxsum
    | violations ->
        List.iter
          (fun v ->
            Format.eprintf "violation: %a@." Validate.pp_violation v)
          violations;
        Printf.eprintf "geacc: %d violations\n" (List.length violations);
        exit 2
  in
  let term = Term.(const run $ logs_term $ instance_arg $ matching_arg) in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check a matching file against an instance.")
    term

(* -- serve ------------------------------------------------------------- *)

module Serve = Geacc_serve

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 4096
     done
   with End_of_file -> ());
  Buffer.contents buf

let serve_cmd =
  let trace_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "trace"; "t" ] ~docv:"FILE"
          ~doc:"Trace file (geacc-trace 1); $(b,-) reads standard input.")
  in
  let state_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "State directory holding the write-ahead journal and snapshots; \
             created if missing, recovered from if not empty.")
  in
  let repair_arg =
    Arg.(
      value & opt string "incremental"
      & info [ "repair" ] ~docv:"MODE"
          ~doc:
            "Arrangement maintenance: $(b,incremental) (replay the dirty \
             suffix, bit-identical to full), $(b,full) (replay every user \
             each batch) or $(b,offline) (re-solve with the anytime \
             mincostflow -> greedy chain).")
  in
  let dirty_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "dirty-threshold" ] ~docv:"FRAC"
          ~doc:
            "Dirty-suffix fraction above which the incremental stage is \
             skipped in favour of a direct full replay.")
  in
  let batch_timeout =
    Arg.(
      value & opt float 0.
      & info [ "batch-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-batch repair deadline; an expired batch is acknowledged \
             degraded (exit 3) and finished by later batches. 0 = none.")
  in
  let queue_cap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission bound per timestamp group; $(b,must) batches always \
             pass, excess $(b,should)/$(b,optional) batches are shed.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 32
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot the state and truncate the journal once N records \
             have accumulated in the journal. 0 = never.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Repair retries for transient faults (with backoff).")
  in
  let no_fsync =
    Arg.(
      value & flag
      & info [ "no-fsync" ]
          ~doc:
            "Skip fsync on journal appends — faster, loses the crash-safety \
             guarantee (benchmarks only).")
  in
  let digest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "digest" ] ~docv:"FILE"
          ~doc:
            "Write the final state digest to FILE (crash-recovery CI \
             compares these across runs).")
  in
  let run () trace_path state_dir repair_mode dirty_threshold batch_timeout
      queue_cap snapshot_every max_retries no_fsync digest_file =
    check_fault_plan ();
    let mode =
      match Serve.Serve_loop.mode_of_string repair_mode with
      | Some m -> m
      | None ->
          die "unknown --repair mode %S (incremental, full or offline)"
            repair_mode
    in
    let text =
      if trace_path = "-" then read_all stdin
      else
        match
          let ic = open_in trace_path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | exception Sys_error message -> die "%s: %s" trace_path message
        | text -> text
    in
    let trace =
      match Serve.Trace.parse text with
      | Ok t -> t
      | Error e -> die "%s" (Robust.Error.to_string e)
    in
    let config =
      {
        (Serve.Serve_loop.default ~state_dir) with
        Serve.Serve_loop.mode;
        dirty_threshold;
        batch_timeout_s = batch_timeout;
        queue_cap;
        snapshot_every;
        max_retries;
        fsync = not no_fsync;
      }
    in
    match
      try Ok (Serve.Serve_loop.run config ~out:stdout trace)
      with Robust.Fault.Injected { point } -> Error point
    with
    | Error point ->
        (* A simulated crash: leave the state directory exactly as a dying
           process would and report distinctly. *)
        flush stdout;
        Printf.eprintf "geacc: injected crash at %s\n" point;
        exit 1
    | Ok (Error e) -> die "%s" (Robust.Error.to_string e)
    | Ok (Ok report) ->
        (match digest_file with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (report.Serve.Serve_loop.digest ^ "\n")));
        Printf.eprintf
          "serve: batches=%d admitted=%d shed=%d skipped=%d applied=%d \
           errors=%d degraded=%d full-replays=%d snapshots=%d retries=%d \
           replayed=%d injected-faults=%d\n"
          report.Serve.Serve_loop.batches report.Serve.Serve_loop.admitted
          report.Serve.Serve_loop.shed report.Serve.Serve_loop.skipped
          report.Serve.Serve_loop.applied report.Serve.Serve_loop.errors
          report.Serve.Serve_loop.degraded_batches
          report.Serve.Serve_loop.full_replays
          report.Serve.Serve_loop.snapshots report.Serve.Serve_loop.retries
          report.Serve.Serve_loop.replayed
          (Robust.Fault.fires ());
        flush stdout;
        flush stderr;
        let status = Serve.Serve_loop.exit_status report in
        if status <> 0 then exit status
  in
  let term =
    Term.(
      const run $ logs_term $ trace_arg $ state_arg $ repair_arg
      $ dirty_threshold $ batch_timeout $ queue_cap $ snapshot_every
      $ max_retries $ no_fsync $ digest_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-safe serving loop over a timestamped batch trace: \
          write-ahead journal, snapshot recovery, incremental repair and \
          admission control.")
    term

(* -- generate-trace ---------------------------------------------------- *)

let generate_trace_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output trace file.")
  in
  let city =
    Arg.(
      value
      & opt city_conv Geacc_datagen.Meetup.auckland
      & info [ "meetup" ] ~docv:"CITY"
          ~doc:
            "City population to stream (vancouver, auckland or singapore).")
  in
  let conflict_ratio =
    Arg.(
      value & opt float 0.25
      & info [ "conflict-ratio" ] ~docv:"R"
          ~doc:"Conflicting fraction of event pairs, in [0,1].")
  in
  let arrivals =
    Arg.(
      value & opt int 8
      & info [ "arrivals-per-batch" ] ~docv:"N"
          ~doc:"Mean user arrivals per batch (burst size).")
  in
  let churn =
    Arg.(
      value & opt float 0.1
      & info [ "churn" ] ~docv:"P"
          ~doc:"Expected user departures per batch.")
  in
  let run () out city conflict_ratio arrivals churn seed =
    let trace =
      Geacc_datagen.Trace_gen.generate ~seed ~city ~conflict_ratio
        ~arrivals_per_batch:arrivals ~churn ()
    in
    Serve.Trace.write ~path:out trace;
    Logs.app (fun m ->
        m "wrote %s: %d batches over %d events, %d users" out
          (List.length trace.Serve.Trace.batches)
          city.Geacc_datagen.Meetup.n_events
          city.Geacc_datagen.Meetup.n_users)
  in
  let term =
    Term.(
      const run $ logs_term $ out $ city $ conflict_ratio $ arrivals $ churn
      $ seed_arg)
  in
  Cmd.v
    (Cmd.info "generate-trace"
       ~doc:"Generate a Meetup-shaped timestamped workload trace for serve.")
    term

(* -- faults ------------------------------------------------------------ *)

let faults_cmd =
  let run () =
    List.iter
      (fun (point, doc) -> Printf.printf "%-16s %s\n" point doc)
      Robust.Fault.known
  in
  let term = Term.(const run $ logs_term) in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "List the GEACC_FAULTS fault points the binaries are instrumented \
          with.")
    term

(* -- info -------------------------------------------------------------- *)

let info_cmd =
  let run () instance_path =
    let instance = load_instance_or_die instance_path in
    Format.printf "%a@." Instance.pp_summary instance
  in
  let term = Term.(const run $ logs_term $ instance_arg) in
  Cmd.v (Cmd.info "info" ~doc:"Print summary statistics of an instance.") term

let main =
  let doc = "Conflict-aware event-participant arrangement (GEACC, ICDE 2015)" in
  Cmd.group
    (Cmd.info "geacc" ~version:"1.0.0" ~doc)
    [
      generate_cmd;
      generate_trace_cmd;
      solve_cmd;
      serve_cmd;
      validate_cmd;
      faults_cmd;
      info_cmd;
    ]

let () = exit (Cmd.eval main)
